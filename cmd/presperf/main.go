// Presperf measures the repo's performance claims and writes them to a
// JSON file (BENCH_pr10.json via the Makefile bench target):
//
//  1. sketch-encoder density and speed per scheme, v1 vs v2, on a real
//     recorded mysqld production run;
//  2. experiment-matrix wall-clock (E2 and E8) at -j 1 vs -j
//     GOMAXPROCS, with a byte-identity check on the rendered tables;
//  3. the run-grant fast path: per-app production recording
//     (FixBugs=true, like the E2 overhead runs) before vs after —
//     before is the pre-batching scheduler (SingleStep+NoBatch: one
//     pick, one handoff, and fresh per-step allocations per committed
//     op), after is the default fast path with declared batches.
//     Reported per app: steps/sec, handoffs/step, allocs/step, and the
//     fraction of steps committed without a fresh pick.
//  4. the record path, global log vs per-thread shards
//     (Options.PerThreadLog): for a fleet of concurrent production
//     recordings — the production framing where many recorded
//     executions share one machine — aggregate steps/sec at each
//     GOMAXPROCS, in both modes, plus each mode's modelled recording
//     overhead and a byte-identity check on the recordings;
//  5. the always-on record path: per-app production recording with the
//     epoch ring off (classic whole-execution log) vs on (bounded ring
//     with periodic world checkpoints) — real steps/sec, modelled
//     overhead, and the retained-window size each way.
//  6. the replay search with prefix snapshots off vs on
//     (ReplayOptions.PrefixSnapshots): per bug, per policy (the paper's
//     feedback search and the pure-directed frontier walk), a seed scan
//     finds a buggy production recording and both searches reproduce it
//     at Workers: 1 — identical trajectories by construction, so the
//     comparison is pure work: total steps, the fast-forwarded prefix
//     steps restores skipped, the enforced remainder, and the snapshot
//     cache's hit/miss/byte/eviction counters.
//
// Sections 3 and 4 run once per -procs setting (comma-separated
// GOMAXPROCS values): section 3 repeats its per-app before/after runs
// at each setting, section 4 sweeps its recording fleet across them.
//
// The report header records the host the numbers were taken on
// (GOMAXPROCS, CPU count, OS/arch, Go version, hostname).
//
// Usage:
//
//	presperf -out BENCH_pr10.json -procs 1,2,4
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/appkit"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/search"
	"repro/internal/sketch"
	"repro/internal/trace"
)

type encodeResult struct {
	Scheme          string  `json:"scheme"`
	Entries         int     `json:"entries"`
	V1Bytes         int     `json:"v1_bytes"`
	V2Bytes         int     `json:"v2_bytes"`
	V1BytesPerEntry float64 `json:"v1_bytes_per_entry"`
	V2BytesPerEntry float64 `json:"v2_bytes_per_entry"`
	SavingPct       float64 `json:"saving_pct"`
	V1NsPerEntry    float64 `json:"v1_ns_per_entry"`
	V2NsPerEntry    float64 `json:"v2_ns_per_entry"`
}

type harnessResult struct {
	Exp             string  `json:"exp"`
	Jobs            int     `json:"jobs"`
	J1Millis        float64 `json:"j1_ms"`
	JMaxMillis      float64 `json:"jmax_ms"`
	Speedup         float64 `json:"speedup"`
	TablesIdentical bool    `json:"tables_identical"`
}

type schedResult struct {
	App                   string  `json:"app"`
	Procs                 int     `json:"gomaxprocs,omitempty"`
	BeforeSteps           uint64  `json:"before_steps"`
	AfterSteps            uint64  `json:"after_steps"`
	BeforeStepsPerSec     float64 `json:"before_steps_per_sec"`
	AfterStepsPerSec      float64 `json:"after_steps_per_sec"`
	Speedup               float64 `json:"speedup"`
	BeforeHandoffsPerStep float64 `json:"before_handoffs_per_step"`
	AfterHandoffsPerStep  float64 `json:"after_handoffs_per_step"`
	BeforeAllocsPerStep   float64 `json:"before_allocs_per_step"`
	AfterAllocsPerStep    float64 `json:"after_allocs_per_step"`
	FastPathStepFrac      float64 `json:"fastpath_step_frac"`
}

type recordSweepPoint struct {
	Procs                int     `json:"gomaxprocs"`
	GlobalStepsPerSec    float64 `json:"global_steps_per_sec"`
	PerThreadStepsPerSec float64 `json:"per_thread_steps_per_sec"`
}

type recordResult struct {
	App                  string  `json:"app"`
	Scheme               string  `json:"scheme"`
	Fleet                int     `json:"fleet"` // concurrent recordings per measurement
	StepsPerRun          uint64  `json:"steps_per_run"`
	GlobalOverheadPct    float64 `json:"global_overhead_pct"`
	PerThreadOverheadPct float64 `json:"per_thread_overhead_pct"`
	EpochSeals           uint64  `json:"epoch_seals"`
	BytesIdentical       bool    `json:"bytes_identical"`
	// Sweep holds aggregate fleet throughput per GOMAXPROCS setting;
	// the speedups compare each mode's max-procs point to its 1-proc
	// point.
	Sweep            []recordSweepPoint `json:"sweep"`
	GlobalSpeedup    float64            `json:"gomaxprocs_speedup_global"`
	PerThreadSpeedup float64            `json:"gomaxprocs_speedup_per_thread"`
}

// replaySearchResult is one (bug, policy) cell of the snapshot-tree
// comparison: the same Workers:1 search with prefix snapshots off and
// on. The trajectories are pinned identical (the snapshot property
// tests), so OffSteps == OnSteps and the work saved is exactly
// OnFastForward — prefix steps replayed mechanically from a snapshot
// instead of re-searched. StepReduction = OffSteps / OnEnforced is the
// bench's headline: how much search work one reproduction no longer
// re-executes.
type replaySearchResult struct {
	App             string  `json:"app"`
	Scheme          string  `json:"scheme"`
	Policy          string  `json:"policy"`
	Reproduced      bool    `json:"reproduced"`
	Attempts        int     `json:"attempts"`
	OffSteps        uint64  `json:"off_steps"`
	OnSteps         uint64  `json:"on_steps"`
	OnFastForward   uint64  `json:"on_fastforward_steps"`
	OnEnforced      uint64  `json:"on_enforced_steps"`
	StepReduction   float64 `json:"step_reduction"`
	SnapshotHits    int     `json:"snapshot_hits"`
	SnapshotMisses  int     `json:"snapshot_misses"`
	SnapshotBytes   int64   `json:"snapshot_bytes"`
	SnapshotEvicted int     `json:"snapshot_evicted"`
}

// epochRecordResult is the always-on record path, epoch ring off vs
// on, for one app: real recording throughput, the modelled overhead,
// and what the bounded window retains.
type epochRecordResult struct {
	App                string  `json:"app"`
	Scheme             string  `json:"scheme"`
	Steps              uint64  `json:"steps"`
	ClassicStepsPerSec float64 `json:"classic_steps_per_sec"`
	RingStepsPerSec    float64 `json:"ring_steps_per_sec"`
	RingCostPct        float64 `json:"ring_cost_pct"` // wall-clock cost of sealing+checkpointing
	ClassicOverheadPct float64 `json:"classic_overhead_pct"`
	RingOverheadPct    float64 `json:"ring_overhead_pct"`
	EpochSteps         uint64  `json:"epoch_steps"`
	RingSize           int     `json:"ring_size"`
	Epochs             int     `json:"epochs_retained"`
	Evicted            uint64  `json:"epochs_evicted"`
	Checkpoints        int     `json:"checkpoints"`
	WindowEntries      int     `json:"window_entries"`
	TotalEntries       int     `json:"classic_entries"`
}

type report struct {
	Tool         string               `json:"tool"`
	GoMaxProcs   int                  `json:"gomaxprocs"`
	NumCPU       int                  `json:"num_cpu"`
	GoVersion    string               `json:"go_version"`
	GOOS         string               `json:"goos"`
	GOARCH       string               `json:"goarch"`
	Hostname     string               `json:"hostname,omitempty"`
	Encode       []encodeResult       `json:"encode"`
	Harness      []harnessResult      `json:"harness"`
	Sched        []schedResult        `json:"sched"`
	Record       []recordResult       `json:"record"`
	EpochRing    []epochRecordResult  `json:"epoch_ring"`
	ReplaySearch []replaySearchResult `json:"replay_search"`
}

// countWriter measures encoded size without retaining bytes.
type countWriter struct{ n int }

func (w *countWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("presperf: ")
	out := flag.String("out", "BENCH_pr10.json", "output JSON path")
	scale := flag.Int("scale", 400, "workload scale for the recorded run")
	overheadScale := flag.Int("overhead-scale", 150, "workload scale for the harness matrix timing")
	schedScale := flag.Int("sched-scale", 300, "workload scale for the fast-path before/after runs")
	reps := flag.Int("reps", 3, "timing repetitions (best-of)")
	procsFlag := flag.String("procs", "1,2,4", "comma-separated GOMAXPROCS settings for the sched and record sections")
	flag.Parse()

	procsList, err := parseProcs(*procsFlag)
	if err != nil {
		log.Fatalf("-procs %q: %v", *procsFlag, err)
	}

	rep := report{
		Tool:       "presperf",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
	}
	if host, err := os.Hostname(); err == nil {
		rep.Hostname = host
	}

	prog, ok := apps.Get("mysqld")
	if !ok {
		log.Fatal("mysqld not in corpus")
	}
	for _, s := range []sketch.Scheme{sketch.SYNC, sketch.SYS, sketch.FUNC, sketch.BB, sketch.RW} {
		rec := core.Record(prog, core.Options{
			Scheme:       s,
			Processors:   4,
			ScheduleSeed: 1,
			WorldSeed:    1,
			Scale:        *scale,
			MaxSteps:     5_000_000,
			FixBugs:      true,
		})
		l := rec.Sketch
		if l.Len() == 0 {
			log.Fatalf("%v sketch empty", s)
		}
		r := encodeResult{Scheme: s.String(), Entries: l.Len()}
		var cw countWriter
		if err := trace.EncodeSketchV1(&cw, l); err != nil {
			log.Fatal(err)
		}
		r.V1Bytes = cw.n
		cw.n = 0
		if err := trace.EncodeSketch(&cw, l); err != nil {
			log.Fatal(err)
		}
		r.V2Bytes = cw.n
		r.V1BytesPerEntry = float64(r.V1Bytes) / float64(r.Entries)
		r.V2BytesPerEntry = float64(r.V2Bytes) / float64(r.Entries)
		r.SavingPct = 100 * (1 - float64(r.V2Bytes)/float64(r.V1Bytes))
		r.V1NsPerEntry = timeEncode(l, trace.EncodeSketchV1)
		r.V2NsPerEntry = timeEncode(l, trace.EncodeSketch)
		rep.Encode = append(rep.Encode, r)
		fmt.Printf("encode %-5s %7d entries  v1 %.2f B/e  v2 %.2f B/e  (-%.0f%%)  %.1f -> %.1f ns/e\n",
			s, r.Entries, r.V1BytesPerEntry, r.V2BytesPerEntry, r.SavingPct, r.V1NsPerEntry, r.V2NsPerEntry)
	}

	cfg := harness.Config{SeedBudget: 2000, MaxAttempts: 1000, OverheadScale: *overheadScale}
	rep.Harness = append(rep.Harness,
		timeMatrix("e2", cfg, *reps, func(c harness.Config) []byte {
			var buf bytes.Buffer
			harness.PrintE2(&buf, harness.RunE2(nil, c))
			return buf.Bytes()
		}),
		timeMatrix("e8", cfg, *reps, func(c harness.Config) []byte {
			var buf bytes.Buffer
			harness.PrintE8(&buf, harness.RunE8(c))
			return buf.Bytes()
		}),
	)

	prevProcs := runtime.GOMAXPROCS(0)
	for _, p := range procsList {
		runtime.GOMAXPROCS(p)
		for _, prog := range apps.All() {
			r := timeSched(prog, *schedScale, *reps)
			r.Procs = p
			rep.Sched = append(rep.Sched, r)
			fmt.Printf("sched %-13s @%dprocs %6.2fx steps/s (%.2fM -> %.2fM)  handoffs/step %.3f -> %.3f  allocs/step %.2f -> %.2f  fastpath %.0f%%\n",
				r.App, p, r.Speedup, r.BeforeStepsPerSec/1e6, r.AfterStepsPerSec/1e6,
				r.BeforeHandoffsPerStep, r.AfterHandoffsPerStep,
				r.BeforeAllocsPerStep, r.AfterAllocsPerStep, 100*r.FastPathStepFrac)
		}
	}
	runtime.GOMAXPROCS(prevProcs)

	// Record path, global vs per-thread logs: compute kernels record RW
	// (the dense sketch the per-thread log exists for); the server/
	// utility apps record SYNC.
	for _, rc := range []struct {
		app    string
		scheme sketch.Scheme
	}{
		{"fft", sketch.RW},
		{"lu", sketch.RW},
		{"barnes", sketch.RW},
		{"mysqld", sketch.SYNC},
		{"pbzip2", sketch.SYNC},
	} {
		prog, ok := apps.Get(rc.app)
		if !ok {
			log.Fatalf("%s not in corpus", rc.app)
		}
		r := timeRecordFleet(prog, rc.scheme, *schedScale, *reps, procsList)
		rep.Record = append(rep.Record, r)
		last := r.Sweep[len(r.Sweep)-1]
		fmt.Printf("record %-9s %-4s fleet=%d  @%dprocs %.2fM -> %.2fM steps/s  scaling x%.2f/x%.2f  overhead %.1f%% -> %.1f%%  seals=%d identical=%v\n",
			r.App, r.Scheme, r.Fleet, last.Procs,
			last.GlobalStepsPerSec/1e6, last.PerThreadStepsPerSec/1e6,
			r.GlobalSpeedup, r.PerThreadSpeedup,
			r.GlobalOverheadPct, r.PerThreadOverheadPct, r.EpochSeals, r.BytesIdentical)
	}

	// Always-on record path: same per-app production recording with the
	// epoch ring off (the classic whole-execution log — "before") and on
	// ("after": bounded ring, periodic checkpoints). The schedule is
	// identical either way, so the throughput delta is exactly the cost
	// of sealing epochs and snapshotting the world.
	for _, rc := range []struct {
		app    string
		scheme sketch.Scheme
	}{
		{"mysqld", sketch.SYNC},
		{"fft", sketch.RW},
		{"pbzip2", sketch.SYNC},
	} {
		prog, ok := apps.Get(rc.app)
		if !ok {
			log.Fatalf("%s not in corpus", rc.app)
		}
		r := timeEpochRecord(prog, rc.scheme, *schedScale, *reps)
		rep.EpochRing = append(rep.EpochRing, r)
		fmt.Printf("epoch-ring %-9s %-4s %.2fM -> %.2fM steps/s (+%.1f%% wall)  overhead %.2f%% -> %.2f%%  window %d/%d entries  %d epochs (%d evicted)  %d checkpoints\n",
			r.App, r.Scheme, r.ClassicStepsPerSec/1e6, r.RingStepsPerSec/1e6, r.RingCostPct,
			r.ClassicOverheadPct, r.RingOverheadPct,
			r.WindowEntries, r.TotalEntries, r.Epochs, r.Evicted, r.Checkpoints)
	}

	// Replay search, prefix snapshots off vs on. pbzip2-order runs the
	// feedback policy only: its pure-directed walk exhausts the attempt
	// budget without reproducing, which measures nothing.
	for _, rc := range []struct {
		bug      string
		scheme   sketch.Scheme
		directed bool
	}{
		{"mysql-169", sketch.SYNC, true},
		{"mysql-791", sketch.SYNC, true},
		{"apache-25520", sketch.SYNC, true},
		{"cherokee-326", sketch.SYNC, true},
		{"barnes-order", sketch.FUNC, true},
		{"transmission-1818", sketch.SYNC, true},
		{"pbzip2-order", sketch.SYS, false},
	} {
		rec := recordBuggy(rc.bug, rc.scheme)
		pols := []struct {
			name string
			pol  search.Policy
		}{{"feedback", search.FeedbackDirected{}}}
		if rc.directed {
			pols = append(pols, struct {
				name string
				pol  search.Policy
			}{"directed", search.PureDirected{}})
		}
		for _, pc := range pols {
			r := timeReplaySearch(rc.bug, rc.scheme, pc.name, pc.pol, rec)
			rep.ReplaySearch = append(rep.ReplaySearch, r)
			fmt.Printf("replay-search %-18s %-4s %-8s repro=%v attempts=%d  steps %d -> enforced %d (ff %d)  reduction %.2fx  snaps hit/miss %d/%d  %0.1f MiB (%d evicted)\n",
				r.App, r.Scheme, r.Policy, r.Reproduced, r.Attempts,
				r.OffSteps, r.OnEnforced, r.OnFastForward, r.StepReduction,
				r.SnapshotHits, r.SnapshotMisses, float64(r.SnapshotBytes)/(1<<20), r.SnapshotEvicted)
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// timeEncode returns best-of-5 ns/entry for one encoder on one log.
func timeEncode(l *trace.SketchLog, enc func(io.Writer, *trace.SketchLog) error) float64 {
	best := 0.0
	for i := 0; i < 5; i++ {
		var cw countWriter
		start := time.Now()
		if err := enc(&cw, l); err != nil {
			log.Fatal(err)
		}
		if ns := float64(time.Since(start).Nanoseconds()) / float64(l.Len()); i == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// timeSched records one app's patched production run (the E2 overhead
// configuration) under the pre-batching scheduler (SingleStep+NoBatch)
// and under the run-grant fast path, best-of-reps each, and reports the
// per-step cost in wall time, handoffs, and heap allocations. The two
// modes record different schedules (batches feed the run-aware
// strategies), so rates are normalized by each mode's own step count.
func timeSched(prog *appkit.Program, scale, reps int) schedResult {
	opts := core.Options{
		Scheme:       sketch.SYNC,
		Processors:   4,
		ScheduleSeed: 1,
		WorldSeed:    1,
		Scale:        scale,
		MaxSteps:     5_000_000,
		FixBugs:      true,
	}
	before := opts
	before.SingleStep = true
	before.NoBatch = true

	r := schedResult{App: prog.Name}
	var res *sched.Result
	r.BeforeSteps, r.BeforeStepsPerSec, r.BeforeAllocsPerStep, res = measureRecord(prog, before, reps)
	r.BeforeHandoffsPerStep = float64(res.Handoffs) / float64(res.Steps)
	r.AfterSteps, r.AfterStepsPerSec, r.AfterAllocsPerStep, res = measureRecord(prog, opts, reps)
	r.AfterHandoffsPerStep = float64(res.Handoffs) / float64(res.Steps)
	r.FastPathStepFrac = float64(res.FastPathSteps) / float64(res.Steps)
	r.Speedup = r.AfterStepsPerSec / r.BeforeStepsPerSec
	return r
}

// measureRecord runs core.Record reps times and returns the step count,
// the best observed steps/sec, the lowest observed allocs/step (mallocs
// are read process-wide, so the minimum over repetitions is the least
// contaminated sample), and the final run's scheduler result.
func measureRecord(prog *appkit.Program, opts core.Options, reps int) (uint64, float64, float64, *sched.Result) {
	var (
		bestRate   float64
		bestAllocs float64
		res        *sched.Result
	)
	var ms runtime.MemStats
	for i := 0; i < reps; i++ {
		runtime.GC()
		runtime.ReadMemStats(&ms)
		mallocs := ms.Mallocs
		start := time.Now()
		rec := core.Record(prog, opts)
		wall := time.Since(start)
		runtime.ReadMemStats(&ms)
		res = rec.Result
		if res == nil || res.Steps == 0 {
			log.Fatalf("%s: empty recording", prog.Name)
		}
		rate := float64(res.Steps) / wall.Seconds()
		allocs := float64(ms.Mallocs-mallocs) / float64(res.Steps)
		if i == 0 || rate > bestRate {
			bestRate = rate
		}
		if i == 0 || allocs < bestAllocs {
			bestAllocs = allocs
		}
	}
	return res.Steps, bestRate, bestAllocs, res
}

// timeRecordFleet measures the record path the way production runs it:
// a fleet of concurrent recordings (independent seeds, one goroutine
// each) sharing one machine. For each GOMAXPROCS in procsList (the
// -procs flag) it times the whole fleet in global-log and
// per-thread-log modes (best-of-reps) and reports aggregate steps/sec;
// the sweep shows real scaling only on hosts with that many physical
// cores. One untimed pair per app also yields the modelled overheads,
// the epoch-seal count and a byte-identity check on the recordings.
func timeRecordFleet(prog *appkit.Program, scheme sketch.Scheme, scale, reps int, procsList []int) recordResult {
	opts := core.Options{
		Scheme:       scheme,
		Processors:   4,
		ScheduleSeed: 1,
		WorldSeed:    1,
		Scale:        scale,
		MaxSteps:     5_000_000,
		FixBugs:      true,
	}
	shardOpts := opts
	shardOpts.PerThreadLog = true

	r := recordResult{App: prog.Name, Scheme: scheme.String()}

	// Correctness and modelled-cost probe (single runs, untimed).
	global := core.Record(prog, opts)
	reg := obs.NewRegistry()
	shardOptsM := shardOpts
	shardOptsM.Metrics = reg
	perThread := core.Record(prog, shardOptsM)
	var gb, sb bytes.Buffer
	if err := global.Write(&gb); err != nil {
		log.Fatal(err)
	}
	if err := perThread.Write(&sb); err != nil {
		log.Fatal(err)
	}
	r.BytesIdentical = bytes.Equal(gb.Bytes(), sb.Bytes())
	r.StepsPerRun = global.Result.Steps
	r.GlobalOverheadPct = 100 * global.Result.Overhead()
	r.PerThreadOverheadPct = 100 * perThread.Result.Overhead()
	for key, v := range reg.Snapshot().Counters {
		if strings.HasPrefix(key, "pres_record_epoch_seals_total") {
			r.EpochSeals += v
		}
	}

	fleet := runtime.NumCPU()
	if fleet < 4 {
		fleet = 4
	}
	if fleet > 8 {
		fleet = 8
	}
	r.Fleet = fleet

	runFleet := func(o core.Options) float64 {
		var steps atomic.Uint64
		var wg sync.WaitGroup
		start := time.Now()
		for i := 0; i < fleet; i++ {
			o := o
			o.ScheduleSeed = int64(1 + i)
			wg.Add(1)
			go func() {
				defer wg.Done()
				steps.Add(core.Record(prog, o).Result.Steps)
			}()
		}
		wg.Wait()
		return float64(steps.Load()) / time.Since(start).Seconds()
	}
	bestOf := func(o core.Options) float64 {
		best := 0.0
		for i := 0; i < reps; i++ {
			if rate := runFleet(o); rate > best {
				best = rate
			}
		}
		return best
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range procsList {
		runtime.GOMAXPROCS(procs)
		r.Sweep = append(r.Sweep, recordSweepPoint{
			Procs:                procs,
			GlobalStepsPerSec:    bestOf(opts),
			PerThreadStepsPerSec: bestOf(shardOpts),
		})
	}
	first, last := r.Sweep[0], r.Sweep[len(r.Sweep)-1]
	r.GlobalSpeedup = last.GlobalStepsPerSec / first.GlobalStepsPerSec
	r.PerThreadSpeedup = last.PerThreadStepsPerSec / first.PerThreadStepsPerSec
	return r
}

// timeEpochRecord records one app's patched production run (the E2
// overhead configuration) with the epoch ring off and on, best-of-reps
// each, and reports the real throughput delta plus what the ring
// retains. Ring geometry: 2048-step epochs, 8 retained, a checkpoint
// per seal — a long-running service's always-on setting scaled to the
// corpus workloads.
func timeEpochRecord(prog *appkit.Program, scheme sketch.Scheme, scale, reps int) epochRecordResult {
	opts := core.Options{
		Scheme:       scheme,
		Processors:   4,
		ScheduleSeed: 1,
		WorldSeed:    1,
		Scale:        scale,
		MaxSteps:     5_000_000,
		FixBugs:      true,
	}
	ringOpts := opts
	ringOpts.EpochRing = &core.EpochRingOptions{Steps: 2048, Size: 8, CheckpointEvery: 1}

	r := epochRecordResult{
		App:        prog.Name,
		Scheme:     scheme.String(),
		EpochSteps: ringOpts.EpochRing.Steps,
		RingSize:   ringOpts.EpochRing.Size,
	}

	// Untimed probes for the modelled overheads and the ring shape.
	classic := core.Record(prog, opts)
	ring := core.Record(prog, ringOpts)
	r.Steps = classic.Result.Steps
	r.ClassicOverheadPct = 100 * classic.Result.Overhead()
	r.RingOverheadPct = 100 * ring.Result.Overhead()
	r.TotalEntries = classic.Sketch.Len()
	r.WindowEntries = ring.Sketch.Len()
	if er := ring.Epochs; er != nil {
		r.Epochs = len(er.Epochs)
		r.Evicted = er.Evicted
		r.Checkpoints = len(er.Checkpoints)
	}

	_, r.ClassicStepsPerSec, _, _ = measureRecord(prog, opts, reps)
	_, r.RingStepsPerSec, _, _ = measureRecord(prog, ringOpts, reps)
	r.RingCostPct = 100 * (r.ClassicStepsPerSec/r.RingStepsPerSec - 1)
	return r
}

// parseProcs parses the -procs flag: a comma-separated, strictly
// increasing list of positive GOMAXPROCS settings.
func parseProcs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		var p int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &p); err != nil || p < 1 {
			return nil, fmt.Errorf("bad GOMAXPROCS value %q", part)
		}
		if len(out) > 0 && p <= out[len(out)-1] {
			return nil, fmt.Errorf("values must strictly increase (%d after %d)", p, out[len(out)-1])
		}
		out = append(out, p)
	}
	return out, nil
}

// recordBuggy scans production seeds until the target bug manifests —
// the same discipline the replay tests use to obtain a recording worth
// searching from.
func recordBuggy(bug string, scheme sketch.Scheme) *core.Recording {
	prog, ok := apps.ProgramForBug(bug)
	if !ok {
		log.Fatalf("%s not in corpus", bug)
	}
	for seed := int64(0); seed < 500; seed++ {
		rec := core.Record(prog, core.Options{
			Scheme:       scheme,
			Processors:   4,
			ScheduleSeed: seed,
			WorldSeed:    1,
			MaxSteps:     200_000,
		})
		if rec.BugFailure() != nil {
			return rec
		}
	}
	log.Fatalf("%s: bug never manifested in 500 production seeds", bug)
	return nil
}

// timeReplaySearch runs one bug's Workers:1 reproduction search twice —
// prefix snapshots off, then on — and reports the step-work comparison.
// The off run's trajectory is the baseline; the property tests pin the
// on run to the identical trajectory, so OffSteps == OnSteps whenever
// both reproduce and the only delta is how many of those steps were
// fast-forwarded from a snapshot instead of re-searched.
func timeReplaySearch(bug string, scheme sketch.Scheme, polName string, pol search.Policy, rec *core.Recording) replaySearchResult {
	prog, _ := apps.ProgramForBug(bug)
	base := core.ReplayOptions{
		Feedback: true, Policy: pol, Oracle: core.MatchBugID(bug), Workers: 1,
	}
	off := core.Replay(prog, rec, base)
	on := base
	on.PrefixSnapshots = true
	got := core.Replay(prog, rec, on)

	r := replaySearchResult{
		App: bug, Scheme: scheme.String(), Policy: polName,
		Reproduced:      off.Reproduced && got.Reproduced,
		Attempts:        got.Attempts,
		OffSteps:        off.Stats.Steps,
		OnSteps:         got.Stats.Steps,
		OnFastForward:   got.Stats.FastForwardSteps,
		OnEnforced:      got.Stats.Steps - got.Stats.FastForwardSteps,
		SnapshotHits:    got.Stats.SnapshotHits,
		SnapshotMisses:  got.Stats.SnapshotMisses,
		SnapshotBytes:   got.Stats.SnapshotBytes,
		SnapshotEvicted: got.Stats.SnapshotEvicted,
	}
	if r.OnEnforced > 0 {
		r.StepReduction = float64(r.OffSteps) / float64(r.OnEnforced)
	}
	return r
}

// timeMatrix times one experiment's full matrix at -j 1 and
// -j GOMAXPROCS (best-of-reps each) and checks the rendered tables
// are byte-identical.
func timeMatrix(exp string, cfg harness.Config, reps int, run func(harness.Config) []byte) harnessResult {
	r := harnessResult{Exp: exp, Jobs: runtime.GOMAXPROCS(0)}
	var seqTable, parTable []byte
	for i := 0; i < reps; i++ {
		c := cfg
		c.Jobs = 1
		start := time.Now()
		seqTable = run(c)
		if ms := float64(time.Since(start)) / float64(time.Millisecond); i == 0 || ms < r.J1Millis {
			r.J1Millis = ms
		}
	}
	for i := 0; i < reps; i++ {
		c := cfg
		c.Jobs = r.Jobs
		start := time.Now()
		parTable = run(c)
		if ms := float64(time.Since(start)) / float64(time.Millisecond); i == 0 || ms < r.JMaxMillis {
			r.JMaxMillis = ms
		}
	}
	r.Speedup = r.J1Millis / r.JMaxMillis
	r.TablesIdentical = bytes.Equal(seqTable, parTable)
	fmt.Printf("harness %s  -j1 %.0f ms  -j%d %.0f ms  speedup %.2fx  identical=%v\n",
		r.Exp, r.J1Millis, r.Jobs, r.JMaxMillis, r.Speedup, r.TablesIdentical)
	return r
}
