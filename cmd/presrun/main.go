// Presrun performs a production run of a corpus application under a
// chosen sketching mechanism, optionally searching schedule seeds until
// a target bug manifests, and writes the recording (sketch + input log)
// to a file for presreplay.
//
// Usage:
//
//	presrun -app mysqld -scheme SYNC -seed 7 -o run.pres
//	presrun -bug mysql-169 -scheme SYNC -o run.pres   # seed search
//	presrun -bug mysql-169 -epoch-steps 64 -epoch-ring 2 -checkpoint-every 1 -o run.pres
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("presrun: ")

	appName := flag.String("app", "", "corpus application to run")
	bugID := flag.String("bug", "", "search seeds until this bug manifests")
	schemeName := flag.String("scheme", "SYNC", "sketching mechanism (BASE|SYNC|SYS|FUNC|BB|RW)")
	seed := flag.Int64("seed", 0, "schedule seed (start of the search with -bug)")
	seedBudget := flag.Int64("seed-budget", 2000, "seeds to try with -bug")
	procs := flag.Int("procs", 4, "modelled processor count")
	scale := flag.Int("scale", 0, "workload scale (0 = app default)")
	worldSeed := flag.Int64("world-seed", 1, "virtual syscall world seed")
	fixed := flag.Bool("fixed", false, "run the patched (bug-free) variant")
	perThreadLog := flag.Bool("per-thread-log", false, "record into per-thread sketch shards merged at encode time (same bytes, cheaper modelled overhead for dense schemes)")
	epochSteps := flag.Uint64("epoch-steps", 0, "seal the sketch into epochs of this many committed events (0 = classic whole-execution recording)")
	epochRing := flag.Int("epoch-ring", 0, "retain at most this many epochs, evicting the oldest (0 = unbounded; implies -epoch-steps' default length)")
	cpEvery := flag.Int("checkpoint-every", 0, "capture a world checkpoint every N epoch seals (0 = no checkpoints; implies epoch recording)")
	out := flag.String("o", "", "write the recording to this file")
	metricsOut := flag.String("metrics-out", "", "write a metrics snapshot to this file")
	metricsFormat := flag.String("metrics-format", "json", "metrics snapshot format: json or prom")
	traceOut := flag.String("trace-out", "", "write a JSONL trace of every production run probed (see OBSERVABILITY.md)")
	flag.Parse()

	if *metricsFormat != "json" && *metricsFormat != "prom" && *metricsFormat != "prometheus" {
		log.Fatalf("unknown -metrics-format %q (want json or prom)", *metricsFormat)
	}

	scheme, err := repro.ParseScheme(*schemeName)
	if err != nil {
		log.Fatal(err)
	}

	var prog *repro.Program
	switch {
	case *bugID != "":
		p, ok := repro.ProgramForBug(*bugID)
		if !ok {
			log.Fatalf("unknown bug %q (see preslist)", *bugID)
		}
		prog = p
	case *appName != "":
		p, ok := repro.GetProgram(*appName)
		if !ok {
			log.Fatalf("unknown application %q (see preslist)", *appName)
		}
		prog = p
	default:
		log.Fatal("one of -app or -bug is required")
	}

	opts := repro.Options{
		Scheme:       scheme,
		Processors:   *procs,
		WorldSeed:    *worldSeed,
		Scale:        *scale,
		FixBugs:      *fixed,
		PerThreadLog: *perThreadLog,
	}
	if *epochSteps > 0 || *epochRing > 0 || *cpEvery > 0 {
		opts.EpochRing = &repro.EpochRingOptions{
			Steps:           *epochSteps,
			Size:            *epochRing,
			CheckpointEvery: *cpEvery,
		}
	}

	// Observability sinks (see OBSERVABILITY.md). The trace gets one
	// "record" event per production run probed, so a seed search leaves
	// a complete audit of what it tried.
	var reg *repro.MetricsRegistry
	if *metricsOut != "" {
		reg = repro.NewMetricsRegistry()
		opts.Metrics = reg
	}
	var sink *repro.TraceSink
	if *traceOut != "" {
		tf, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		defer tf.Close()
		sink = repro.NewTraceSink(tf)
	}
	traceRecord := func(seed int64, r *repro.Recording, bug bool) {
		outcome := "clean"
		switch {
		case bug:
			outcome = "bug"
		case r.Result.Failure != nil:
			outcome = "failure"
		}
		sink.Emit(repro.RecordEvent{
			Event:         repro.EventRecord,
			Seed:          seed,
			Outcome:       outcome,
			Steps:         r.Result.Steps,
			SketchEntries: r.Sketch.Len(),
			LogBytes:      r.LogBytes(),
		})
	}

	var rec *repro.Recording
	if *bugID != "" {
		oracle := repro.MatchBugID(*bugID)
		for s := *seed; s < *seed+*seedBudget; s++ {
			opts.ScheduleSeed = s
			r := repro.Record(prog, opts)
			hit := false
			if f := r.BugFailure(); f != nil && oracle(f) {
				hit = true
			}
			traceRecord(s, r, hit)
			if hit {
				fmt.Printf("bug %s manifested at seed %d: %v\n", *bugID, s, r.BugFailure())
				rec = r
				break
			}
		}
		if rec == nil {
			log.Fatalf("bug %s did not manifest in %d seeds", *bugID, *seedBudget)
		}
	} else {
		opts.ScheduleSeed = *seed
		rec = repro.Record(prog, opts)
		traceRecord(*seed, rec, rec.BugFailure() != nil)
		if f := rec.Result.Failure; f != nil {
			fmt.Printf("run failed: %v\n", f)
		} else {
			fmt.Println("run completed cleanly")
		}
	}

	fmt.Printf("app=%s scheme=%v steps=%d sketch-entries=%d (density %.4f) log-bytes=%d overhead=%.2f%%\n",
		prog.Name, scheme, rec.Result.Steps, rec.Sketch.Len(),
		float64(rec.Sketch.Len())/float64(max(rec.Sketch.TotalOps, 1)),
		rec.LogBytes(), rec.Result.Overhead()*100)
	if ring := rec.Epochs; ring != nil {
		fmt.Printf("epochs: %d retained (+%d evicted), %d checkpoints, window=%d entries\n",
			len(ring.Epochs), ring.Evicted, len(ring.Checkpoints), ring.WindowLen())
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := rec.Write(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("recording written to %s\n", *out)
		fmt.Printf("replay with: presreplay -app %s -seed %d -world-seed %d -procs %d -scale %d",
			prog.Name, rec.Options.ScheduleSeed, *worldSeed, *procs, *scale)
		if *bugID != "" {
			fmt.Printf(" -bug %s", *bugID)
		}
		if rec.Epochs != nil && len(rec.Epochs.Checkpoints) > 0 {
			fmt.Printf(" -from-checkpoint")
		}
		fmt.Printf(" %s\n", *out)
	}

	if sink != nil {
		if err := sink.Err(); err != nil {
			log.Printf("trace: %v", err)
		}
		fmt.Printf("record trace written to %s (%d events)\n", *traceOut, sink.Events())
	}
	if reg != nil {
		f, err := os.Create(*metricsOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := repro.WriteMetrics(f, reg, *metricsFormat); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("metrics snapshot written to %s\n", *metricsOut)
	}
}
