// Preslist lists the evaluation corpus: the 11 applications and 13
// real-world concurrency bugs modelled from the paper.
//
// Usage:
//
//	preslist [-bugs] [-apps]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro"
	"repro/internal/harness"
)

func main() {
	bugsOnly := flag.Bool("bugs", false, "list only the bugs")
	appsOnly := flag.Bool("apps", false, "list only the applications")
	stats := flag.Bool("stats", false, "profile each application's production workload")
	flag.Parse()

	if *stats {
		harness.PrintAppStats(os.Stdout, harness.CollectAppStats(harness.Config{}))
		return
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	defer w.Flush()

	if !*bugsOnly {
		fmt.Fprintln(w, "APPLICATION\tCATEGORY\tBUGS")
		for _, p := range repro.Programs() {
			fmt.Fprintf(w, "%s\t%s\t%v\n", p.Name, p.Category, p.Bugs)
		}
		if !*appsOnly {
			fmt.Fprintln(w)
		}
	}
	if !*appsOnly {
		fmt.Fprintln(w, "BUG\tAPP\tTYPE\tDESCRIPTION")
		for _, b := range repro.Bugs() {
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", b.ID, b.App, b.Type, b.Description)
		}
	}
}
