// Preslist lists the evaluation corpus: the 11 applications and 13
// real-world concurrency bugs modelled from the paper. Given a
// recording file, it instead inspects the recording's structure —
// for an epoch-ring recording (presrun -epoch-steps) the epoch map:
// epoch count, ring occupancy, checkpoint positions and bytes per
// epoch; classic v1/v2 recordings are summarized whole.
//
// Usage:
//
//	preslist [-bugs] [-apps]
//	preslist run.pres
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro"
	"repro/internal/harness"
	"repro/internal/sketch"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("preslist: ")

	bugsOnly := flag.Bool("bugs", false, "list only the bugs")
	appsOnly := flag.Bool("apps", false, "list only the applications")
	stats := flag.Bool("stats", false, "profile each application's production workload")
	flag.Parse()

	if flag.NArg() == 1 {
		inspect(flag.Arg(0))
		return
	}
	if flag.NArg() > 1 {
		log.Fatal("usage: preslist [-bugs|-apps|-stats] [recording-file]")
	}

	if *stats {
		harness.PrintAppStats(os.Stdout, harness.CollectAppStats(harness.Config{}))
		return
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	defer w.Flush()

	if !*bugsOnly {
		fmt.Fprintln(w, "APPLICATION\tCATEGORY\tBUGS")
		for _, p := range repro.Programs() {
			fmt.Fprintf(w, "%s\t%s\t%v\n", p.Name, p.Category, p.Bugs)
		}
		if !*appsOnly {
			fmt.Fprintln(w)
		}
	}
	if !*appsOnly {
		fmt.Fprintln(w, "BUG\tAPP\tTYPE\tDESCRIPTION")
		for _, b := range repro.Bugs() {
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", b.ID, b.App, b.Type, b.Description)
		}
	}
}

// inspect prints a recording file's structure. Epoch-ring recordings
// get the full epoch map; classic (whole-execution, v1 or v2)
// recordings get the flat summary.
func inspect(path string) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	rec, err := repro.ReadRecording(f, repro.Options{})
	if err != nil {
		log.Fatal(err)
	}

	format := "classic (whole-execution)"
	if rec.Epochs != nil {
		format = "epoch container"
	}
	fmt.Printf("%s: %s\n", path, format)
	fmt.Printf("scheme=%v sketch-entries=%d (of %d instrumented ops, %d records) inputs=%d log-bytes=%d\n",
		rec.Scheme, rec.Sketch.Len(), rec.Sketch.TotalOps, rec.Sketch.Records,
		rec.Inputs.Len(), rec.LogBytes())

	ring := rec.Epochs
	if ring == nil {
		return
	}

	capacity := "unbounded"
	if ring.Size > 0 {
		capacity = fmt.Sprintf("%d", ring.Size)
	}
	fmt.Printf("ring: %d/%s epochs retained, %d evicted (%d entries dropped)\n",
		len(ring.Epochs), capacity, ring.Evicted, ring.EvictedEntries)

	// Checkpoints are indexed by the epoch they precede; a replayer
	// starting from one re-executes cp.Step events and then enforces
	// only the window at or after cp.SketchIndex.
	cpBefore := map[uint64]int{}
	for i, cp := range ring.Checkpoints {
		cpBefore[cp.Epoch] = i
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "EPOCH\tSTART-STEP\tENTRIES\tBYTES\tCHECKPOINT")
	for _, e := range ring.Epochs {
		mark := ""
		if i, ok := cpBefore[e.ID]; ok {
			cp := ring.Checkpoints[i]
			mark = fmt.Sprintf("at entry (step %d, input %d, world %dB)",
				cp.Step, cp.InputIndex, len(cp.World))
		}
		bytes := sketch.EncodedSize(&trace.SketchLog{
			Scheme:  ring.Scheme,
			Entries: e.Entries,
		})
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%s\n", e.ID, e.StartStep, len(e.Entries), bytes, mark)
	}
	w.Flush()

	if len(ring.Checkpoints) == 0 {
		fmt.Println("checkpoints: none")
		return
	}
	last := ring.Checkpoints[len(ring.Checkpoints)-1]
	fmt.Printf("checkpoints: %d retained; newest before epoch %d (step %d, sketch %d, input %d)\n",
		len(ring.Checkpoints), last.Epoch, last.Step, last.SketchIndex, last.InputIndex)
}
