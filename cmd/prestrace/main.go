// Prestrace decodes and pretty-prints a recording written by presrun:
// the sketch entries (the partial order PRES enforces on replay) and
// the non-deterministic input log.
//
// Usage:
//
//	prestrace run.pres
//	prestrace -inputs -n 50 run.pres
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro"
	"repro/internal/vsys"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("prestrace: ")

	n := flag.Int("n", 0, "print at most n entries per section (0 = all)")
	inputsOnly := flag.Bool("inputs", false, "print only the input log")
	sketchOnly := flag.Bool("sketch", false, "print only the sketch")
	lanes := flag.Bool("lanes", false, "render the sketch as per-thread swimlanes")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: prestrace [-n N] [-inputs|-sketch] <recording-file>")
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	rec, err := repro.ReadRecording(f, repro.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scheme=%v  sketch-entries=%d (of %d instrumented ops, %d records)  inputs=%d\n",
		rec.Scheme, rec.Sketch.Len(), rec.Sketch.TotalOps, rec.Sketch.Records, rec.Inputs.Len())

	limit := func(total int) int {
		if *n > 0 && *n < total {
			return *n
		}
		return total
	}

	if *lanes {
		printLanes(rec, *n)
		return
	}

	if !*inputsOnly {
		fmt.Println("\nsketch (the recorded partial order):")
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  #\tthread\tkind\tobject")
		for i, e := range rec.Sketch.Entries[:limit(rec.Sketch.Len())] {
			fmt.Fprintf(tw, "  %d\tt%d\t%s\t%#x\n", i, e.TID, e.Kind, e.Obj)
		}
		tw.Flush()
		if lim := limit(rec.Sketch.Len()); lim < rec.Sketch.Len() {
			fmt.Printf("  ... %d more\n", rec.Sketch.Len()-lim)
		}
	}

	if !*sketchOnly {
		fmt.Println("\ninputs (recorded under every scheme):")
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  #\tthread\tcall\tbytes")
		for i, r := range rec.Inputs.Records[:limit(rec.Inputs.Len())] {
			data := fmt.Sprintf("%x", r.Data)
			if len(data) > 24 {
				data = data[:24] + "..."
			}
			fmt.Fprintf(tw, "  %d\tt%d\t%s\t%s\n", i, r.TID, vsys.CallName(r.Call), data)
		}
		tw.Flush()
		if lim := limit(rec.Inputs.Len()); lim < rec.Inputs.Len() {
			fmt.Printf("  ... %d more\n", rec.Inputs.Len()-lim)
		}
	}
}

// printLanes renders the sketch as per-thread swimlanes: one column per
// thread, one row per recorded point, so the recorded interleaving
// structure is visible at a glance.
func printLanes(rec *repro.Recording, limit int) {
	maxTID := 0
	for _, e := range rec.Sketch.Entries {
		if int(e.TID) > maxTID {
			maxTID = int(e.TID)
		}
	}
	n := rec.Sketch.Len()
	if limit > 0 && limit < n {
		n = limit
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 1, ' ', 0)
	defer w.Flush()
	fmt.Fprint(w, "\n  #")
	for tid := 0; tid <= maxTID; tid++ {
		fmt.Fprintf(w, "\tt%d", tid)
	}
	fmt.Fprintln(w)
	for i, e := range rec.Sketch.Entries[:n] {
		fmt.Fprintf(w, "  %d", i)
		for tid := 0; tid <= maxTID; tid++ {
			if int(e.TID) == tid {
				fmt.Fprintf(w, "\t%s", e.Kind)
			} else {
				fmt.Fprint(w, "\t.")
			}
		}
		fmt.Fprintln(w)
	}
	if n < rec.Sketch.Len() {
		fmt.Printf("  ... %d more\n", rec.Sketch.Len()-n)
	}
}
