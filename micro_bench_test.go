package repro_test

import (
	"testing"

	"repro"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/sketch"
	"repro/internal/ssync"
	"repro/internal/trace"
)

// Substrate micro-benchmarks: the raw costs that bound every experiment
// above — scheduling-point throughput, primitive operations, recorder
// appends.

// BenchmarkSchedulingPoint measures the substrate's event throughput:
// the announce/grant handshake plus bookkeeping per instrumented op.
func BenchmarkSchedulingPoint(b *testing.B) {
	res := sched.Run(func(th *sched.Thread) {
		for i := 0; i < b.N; i++ {
			th.Yield()
		}
	}, sched.Config{Strategy: sched.Lowest{}, MaxSteps: uint64(b.N) + 10})
	if res.Failure != nil {
		b.Fatal(res.Failure)
	}
}

// BenchmarkMutexRoundTrip measures a lock/unlock pair under the
// simulated scheduler.
func BenchmarkMutexRoundTrip(b *testing.B) {
	res := sched.Run(func(th *sched.Thread) {
		m := ssync.NewMutex("bench")
		for i := 0; i < b.N; i++ {
			m.Lock(th)
			m.Unlock(th)
		}
	}, sched.Config{Strategy: sched.Lowest{}, MaxSteps: 2*uint64(b.N) + 10})
	if res.Failure != nil {
		b.Fatal(res.Failure)
	}
}

// BenchmarkCellStore measures one shared-memory write.
func BenchmarkCellStore(b *testing.B) {
	res := sched.Run(func(th *sched.Thread) {
		x := mem.NewCell("bench.x", 0)
		for i := 0; i < b.N; i++ {
			x.Store(th, uint64(i))
		}
	}, sched.Config{Strategy: sched.Lowest{}, MaxSteps: uint64(b.N) + 10})
	if res.Failure != nil {
		b.Fatal(res.Failure)
	}
}

// BenchmarkSketchAppend measures the real in-memory recorder append.
func BenchmarkSketchAppend(b *testing.B) {
	r := sketch.NewRecorder(sketch.SYNC)
	ev := trace.Event{TID: 1, TCount: 1, Kind: trace.KindLock, Obj: 42}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.OnEvent(ev)
	}
}

// BenchmarkReproduceRun measures deterministic full-order replay of a
// corpus bug — the "every time" path a developer loops in a debugger.
func BenchmarkReproduceRun(b *testing.B) {
	prog, _ := repro.ProgramForBug("fft-barrier")
	oracle := repro.MatchBugID("fft-barrier")
	var rec *repro.Recording
	for seed := int64(0); seed < 3000; seed++ {
		r := repro.Record(prog, repro.Options{Scheme: repro.SYNC, Processors: 4, ScheduleSeed: seed, WorldSeed: 1})
		if f := r.BugFailure(); f != nil && oracle(f) {
			rec = r
			break
		}
	}
	if rec == nil {
		b.Fatal("no buggy seed")
	}
	res := repro.Replay(prog, rec, repro.ReplayOptions{Feedback: true, Oracle: oracle})
	if !res.Reproduced {
		b.Fatal("setup failed")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := repro.Reproduce(prog, rec, res.Order)
		if out.Failure == nil {
			b.Fatal("lost the bug")
		}
	}
}
