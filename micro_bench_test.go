package repro_test

import (
	"io"
	"testing"

	"repro"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/sketch"
	"repro/internal/ssync"
	"repro/internal/trace"
)

// Substrate micro-benchmarks: the raw costs that bound every experiment
// above — scheduling-point throughput, primitive operations, recorder
// appends.

// BenchmarkSchedulingPoint measures the substrate's event throughput:
// the announce/grant handshake plus bookkeeping per instrumented op.
func BenchmarkSchedulingPoint(b *testing.B) {
	b.ReportAllocs()
	res := sched.Run(func(th *sched.Thread) {
		for i := 0; i < b.N; i++ {
			th.Yield()
		}
	}, sched.Config{Strategy: sched.Lowest{}, MaxSteps: uint64(b.N) + 10})
	if res.Failure != nil {
		b.Fatal(res.Failure)
	}
}

// BenchmarkSchedulingPointSingleStep is the same loop under the legacy
// one-pick-one-step reference mode with per-step allocations — the
// "before" side of the fast-path comparison.
func BenchmarkSchedulingPointSingleStep(b *testing.B) {
	b.ReportAllocs()
	res := sched.Run(func(th *sched.Thread) {
		for i := 0; i < b.N; i++ {
			th.Yield()
		}
	}, sched.Config{Strategy: sched.Lowest{}, MaxSteps: uint64(b.N) + 10, SingleStep: true})
	if res.Failure != nil {
		b.Fatal(res.Failure)
	}
}

// BenchmarkSchedulingPointBatch measures throughput of declared
// straight-line batches: four ops per announce/grant round-trip.
func BenchmarkSchedulingPointBatch(b *testing.B) {
	b.ReportAllocs()
	batch := []*sched.Op{
		{Kind: trace.KindBB, Obj: 1},
		{Kind: trace.KindStore, Obj: 2},
		{Kind: trace.KindStore, Obj: 3},
		{Kind: trace.KindStore, Obj: 4},
	}
	res := sched.Run(func(th *sched.Thread) {
		for i := 0; i < b.N; i++ {
			th.PointBatch(batch...)
		}
	}, sched.Config{Strategy: sched.NewRandomMP(1, 0, 1), MaxSteps: 4*uint64(b.N) + 10})
	if res.Failure != nil {
		b.Fatal(res.Failure)
	}
	if res.Steps != 4*uint64(b.N)+2 {
		b.Fatalf("steps = %d", res.Steps)
	}
}

// countObserver exercises the observer fan-out without retaining events.
type countObserver struct{ n uint64 }

func (c *countObserver) OnEvent(ev trace.Event) uint64 {
	c.n++
	return 0
}

// TestSchedGrantLoopAllocFree is the allocation gate for the grant fast
// path: a run of ~9k scheduling points (yields through the tight
// single-candidate loop plus pre-declared batches, with an observer
// fanning out every event) must stay within a small fixed allocation
// budget — per-step allocations are zero; only per-run setup (thread,
// channels, goroutine) remains. The legacy single-step mode allocates a
// view, candidate slice, and effect context per step and would exceed
// this bound by orders of magnitude.
func TestSchedGrantLoopAllocFree(t *testing.T) {
	const yields, batches = 5000, 1000
	batch := []*sched.Op{
		{Kind: trace.KindBB, Obj: 1},
		{Kind: trace.KindStore, Obj: 2},
		{Kind: trace.KindStore, Obj: 3},
		{Kind: trace.KindStore, Obj: 4},
	}
	const steps = yields + 4*batches + 2
	run := func() {
		obs := &countObserver{}
		res := sched.Run(func(th *sched.Thread) {
			for i := 0; i < yields; i++ {
				th.Yield()
			}
			for i := 0; i < batches; i++ {
				th.PointBatch(batch...)
			}
		}, sched.Config{Strategy: sched.Lowest{}, Observers: []sched.Observer{obs}})
		if res.Failure != nil {
			t.Fatal(res.Failure)
		}
		if res.Steps != steps || obs.n != steps {
			t.Fatalf("steps = %d, observed = %d, want %d", res.Steps, obs.n, steps)
		}
	}
	allocs := testing.AllocsPerRun(5, run)
	// Fixed per-run setup costs tens of allocations; at ~9k steps any
	// per-step allocation would blow far past this bound.
	if allocs > 100 {
		t.Fatalf("grant loop allocated %.0f objects over %d steps (%.4f/step); want amortized zero",
			allocs, steps, allocs/steps)
	}
}

// BenchmarkSchedulingPointMetricsOff is the observability acceptance
// benchmark's baseline: identical to BenchmarkSchedulingPoint but named
// for side-by-side comparison with the MetricsOn variant. The disabled
// path (nil registry) must stay within noise of never having had
// instrumentation — compare with:
//
//	go test -bench 'SchedulingPointMetrics' -benchtime 2s -count 5 .
func BenchmarkSchedulingPointMetricsOff(b *testing.B) {
	benchSchedulingPoint(b, nil)
}

// BenchmarkSchedulingPointMetricsOn measures the same loop with a live
// registry: the per-event cost is one pre-resolved atomic add.
func BenchmarkSchedulingPointMetricsOn(b *testing.B) {
	benchSchedulingPoint(b, repro.NewMetricsRegistry())
}

func benchSchedulingPoint(b *testing.B, reg *repro.MetricsRegistry) {
	res := sched.Run(func(th *sched.Thread) {
		for i := 0; i < b.N; i++ {
			th.Yield()
		}
	}, sched.Config{Strategy: sched.Lowest{}, MaxSteps: uint64(b.N) + 10, Metrics: reg})
	if res.Failure != nil {
		b.Fatal(res.Failure)
	}
}

// BenchmarkReplaySearchMetricsOff / On measure a full replay search of a
// corpus bug with observability disabled vs fully enabled (registry and
// trace sink) — the end-to-end version of the SchedulingPointMetrics
// pair.
func BenchmarkReplaySearchMetricsOff(b *testing.B) {
	benchReplaySearch(b, false)
}

func BenchmarkReplaySearchMetricsOn(b *testing.B) {
	benchReplaySearch(b, true)
}

func benchReplaySearch(b *testing.B, instrument bool) {
	prog, _ := repro.ProgramForBug("fft-barrier")
	oracle := repro.MatchBugID("fft-barrier")
	rec := recordBugBench(b, prog, oracle)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := repro.ReplayOptions{Feedback: true, Oracle: oracle}
		if instrument {
			opts.Metrics = repro.NewMetricsRegistry()
			opts.Trace = repro.NewTraceSink(io.Discard)
		}
		if !repro.Replay(prog, rec, opts).Reproduced {
			b.Fatal("lost the bug")
		}
	}
}

func recordBugBench(b *testing.B, prog *repro.Program, oracle repro.Oracle) *repro.Recording {
	b.Helper()
	for seed := int64(0); seed < 3000; seed++ {
		r := repro.Record(prog, repro.Options{Scheme: repro.SYNC, Processors: 4, ScheduleSeed: seed, WorldSeed: 1})
		if f := r.BugFailure(); f != nil && oracle(f) {
			return r
		}
	}
	b.Fatal("no buggy seed")
	return nil
}

// BenchmarkMutexRoundTrip measures a lock/unlock pair under the
// simulated scheduler.
func BenchmarkMutexRoundTrip(b *testing.B) {
	res := sched.Run(func(th *sched.Thread) {
		m := ssync.NewMutex("bench")
		for i := 0; i < b.N; i++ {
			m.Lock(th)
			m.Unlock(th)
		}
	}, sched.Config{Strategy: sched.Lowest{}, MaxSteps: 2*uint64(b.N) + 10})
	if res.Failure != nil {
		b.Fatal(res.Failure)
	}
}

// BenchmarkCellStore measures one shared-memory write.
func BenchmarkCellStore(b *testing.B) {
	res := sched.Run(func(th *sched.Thread) {
		x := mem.NewCell("bench.x", 0)
		for i := 0; i < b.N; i++ {
			x.Store(th, uint64(i))
		}
	}, sched.Config{Strategy: sched.Lowest{}, MaxSteps: uint64(b.N) + 10})
	if res.Failure != nil {
		b.Fatal(res.Failure)
	}
}

// BenchmarkSketchAppend measures the real in-memory recorder append.
func BenchmarkSketchAppend(b *testing.B) {
	r := sketch.NewRecorder(sketch.SYNC)
	ev := trace.Event{TID: 1, TCount: 1, Kind: trace.KindLock, Obj: 42}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.OnEvent(ev)
	}
}

// BenchmarkReproduceRun measures deterministic full-order replay of a
// corpus bug — the "every time" path a developer loops in a debugger.
func BenchmarkReproduceRun(b *testing.B) {
	prog, _ := repro.ProgramForBug("fft-barrier")
	oracle := repro.MatchBugID("fft-barrier")
	var rec *repro.Recording
	for seed := int64(0); seed < 3000; seed++ {
		r := repro.Record(prog, repro.Options{Scheme: repro.SYNC, Processors: 4, ScheduleSeed: seed, WorldSeed: 1})
		if f := r.BugFailure(); f != nil && oracle(f) {
			rec = r
			break
		}
	}
	if rec == nil {
		b.Fatal("no buggy seed")
	}
	res := repro.Replay(prog, rec, repro.ReplayOptions{Feedback: true, Oracle: oracle})
	if !res.Reproduced {
		b.Fatal("setup failed")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := repro.Reproduce(prog, rec, res.Order)
		if out.Failure == nil {
			b.Fatal("lost the bug")
		}
	}
}
