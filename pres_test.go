package repro_test

import (
	"testing"

	"repro"
)

// demoProgram is the doc-comment example: a two-thread order violation.
func demoProgram() *repro.Program {
	return &repro.Program{
		Name: "demo",
		Run: func(env *repro.Env) {
			th := env.T
			data := repro.NewCell("data", 0)
			ready := repro.NewCell("ready", 0)
			prod := th.Spawn("producer", func(t *repro.Thread) {
				ready.Store(t, 1) // bug: published before data
				t.Yield()
				data.Store(t, 7)
			})
			cons := th.Spawn("consumer", func(t *repro.Thread) {
				if ready.Load(t) == 1 {
					t.Check(data.Load(t) == 7, "demo-bug", "used before init")
				}
			})
			th.Join(prod)
			th.Join(cons)
		},
	}
}

func TestPublicAPIRoundTrip(t *testing.T) {
	prog := demoProgram()
	var rec *repro.Recording
	for seed := int64(0); seed < 200; seed++ {
		r := repro.Record(prog, repro.Options{
			Scheme:       repro.SYNC,
			Processors:   4,
			ScheduleSeed: seed,
			MaxSteps:     100_000,
		})
		if r.BugFailure() != nil {
			rec = r
			break
		}
	}
	if rec == nil {
		t.Fatal("demo bug never manifested")
	}
	res := repro.Replay(prog, rec, repro.ReplayOptions{
		Feedback: true,
		Oracle:   repro.MatchBugID("demo-bug"),
	})
	if !res.Reproduced {
		t.Fatalf("not reproduced in %d attempts", res.Attempts)
	}
	if res.Attempts > 10 {
		t.Fatalf("took %d attempts", res.Attempts)
	}
	out := repro.Reproduce(prog, rec, res.Order)
	if out.Failure == nil || out.Failure.BugID != "demo-bug" {
		t.Fatalf("reproduce failed: %v", out.Failure)
	}
}

func TestPublicCorpusAccess(t *testing.T) {
	if len(repro.Programs()) != 11 {
		t.Fatalf("programs = %d", len(repro.Programs()))
	}
	if len(repro.Bugs()) != 13 {
		t.Fatalf("bugs = %d", len(repro.Bugs()))
	}
	b, ok := repro.GetBug("mysql-169")
	if !ok || b.App != "mysqld" {
		t.Fatalf("GetBug = %+v, %v", b, ok)
	}
	p, ok := repro.ProgramForBug("mysql-169")
	if !ok || p.Name != "mysqld" {
		t.Fatal("ProgramForBug broken")
	}
	if _, ok := repro.GetProgram("mysqld"); !ok {
		t.Fatal("GetProgram broken")
	}
}

func TestPublicSchemes(t *testing.T) {
	if len(repro.Schemes()) != 6 {
		t.Fatalf("schemes = %d", len(repro.Schemes()))
	}
	s, err := repro.ParseScheme("sync")
	if err != nil || s != repro.SYNC {
		t.Fatalf("ParseScheme = %v, %v", s, err)
	}
}

func TestPublicSyncPrimitives(t *testing.T) {
	prog := &repro.Program{
		Name: "prims",
		Run: func(env *repro.Env) {
			th := env.T
			m := repro.NewMutex("m")
			rw := repro.NewRWMutex("rw")
			c := repro.NewCond("c")
			sem := repro.NewSemaphore("s", 1)
			bar := repro.NewBarrier("b", 1)
			wg := repro.NewWaitGroup("wg")
			once := repro.NewOnce("once")
			arr := repro.NewArray("arr", 4)

			m.Lock(th)
			m.Unlock(th)
			rw.RLock(th)
			rw.RUnlock(th)
			_ = c
			sem.Acquire(th)
			sem.Release(th)
			bar.Await(th)
			wg.Add(th, 1)
			wg.Done(th)
			wg.Wait(th)
			ran := false
			once.Do(th, func() { ran = true })
			th.Check(ran, "prims", "once did not run")
			arr.Store(th, 0, 5)
			th.Check(arr.Load(th, 0) == 5, "prims", "array broken")

			repro.Func(th, "f", func() { repro.BB(th, "b1") })

			w := env.W
			fd := w.Open(th, "/tmp/x")
			fd.Write(th, []byte("hi"))
			fd.Close(th)
			q := w.NewQueue("q")
			q.Send(th, []byte("msg"))
			if msg, ok := q.Recv(th); !ok || string(msg) != "msg" {
				th.Fail("prims", "queue broken")
			}
		},
	}
	rec := repro.Record(prog, repro.Options{Scheme: repro.RW, ScheduleSeed: 1})
	if rec.Result.Failure != nil {
		t.Fatal(rec.Result.Failure)
	}
}

func TestExploreProgram(t *testing.T) {
	// A tiny corpus-style program: the fixed variant must have zero
	// failing schedules within the budget window it fully covers.
	prog := &repro.Program{
		Name: "tiny",
		Run: func(env *repro.Env) {
			th := env.T
			x := repro.NewCell("x", 0)
			m := repro.NewMutex("m")
			work := func(t *repro.Thread) {
				if env.FixBugs {
					m.Lock(t)
				}
				v := x.Load(t)
				x.Store(t, v+1)
				if env.FixBugs {
					m.Unlock(t)
				}
			}
			a := th.Spawn("a", work)
			b := th.Spawn("b", work)
			th.Join(a)
			th.Join(b)
			th.Check(x.Peek() == 2, "tiny-lost", "lost update: %d", x.Peek())
		},
	}
	buggy := repro.ExploreProgram(prog, repro.Options{}, repro.ExploreOptions{})
	if !buggy.Complete || buggy.FailureCount == 0 {
		t.Fatalf("buggy variant: %v", buggy)
	}
	fixed := repro.ExploreProgram(prog, repro.Options{FixBugs: true}, repro.ExploreOptions{})
	if !fixed.Complete || fixed.FailureCount != 0 {
		t.Fatalf("fixed variant: %v", fixed)
	}
}
