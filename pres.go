// Package repro is a from-scratch reproduction of PRES — probabilistic
// replay with execution sketching on multiprocessors (Park et al.,
// SOSP 2009) — as a Go library.
//
// PRES makes production-run concurrency bugs reproducible at low cost:
// during production it records only a cheap "sketch" of the execution
// (the global order of synchronization operations, system calls,
// function entries or basic blocks — plus all non-deterministic inputs),
// and at diagnosis time an intelligent replayer searches the unrecorded
// interleaving space, guided by the sketch and by feedback from failed
// replay attempts, until the failure reproduces. Once reproduced, the
// full interleaving is captured and the bug replays deterministically
// every time.
//
// Because the Go runtime neither exposes thread-scheduling control nor
// allows binary instrumentation, programs run on a deterministic
// simulated multiprocessor (see DESIGN.md): applications are written
// against this package's instrumented API — Cell/Array for shared
// memory, Mutex/Cond/Semaphore/Barrier/WaitGroup/Once for
// synchronization, World for system calls, Func/BB for control-flow
// instrumentation — and every operation is a scheduling point the
// recorder and replayer control.
//
// Quick start:
//
//	prog := &repro.Program{
//		Name: "demo",
//		Run: func(env *repro.Env) { ... racy code ... },
//	}
//	rec := repro.Record(prog, repro.Options{Scheme: repro.SYNC, ScheduleSeed: seed})
//	if rec.BugFailure() != nil {
//		res := repro.Replay(prog, rec, repro.ReplayOptions{Feedback: true})
//		// res.Attempts coordinated replays were needed; afterwards
//		// repro.Reproduce(prog, rec, res.Order) fails identically forever.
//	}
//
// The paper's evaluation — 11 applications, 13 real-world concurrency
// bugs, and every table and figure — is reproduced by the corpus
// (Programs, Bugs) and the cmd/presbench tool.
package repro

import (
	"repro/internal/appkit"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/patterns"
	"repro/internal/race"
	"repro/internal/sched"
	"repro/internal/search"
	"repro/internal/sketch"
	"repro/internal/ssync"
	"repro/internal/trace"
	"repro/internal/vsys"
)

// Execution substrate: the instrumented-program API.
type (
	// Thread is a simulated application thread; all instrumented
	// operations take the current thread.
	Thread = sched.Thread
	// Env is what a Program's Run receives: main thread, syscall world
	// and workload knobs.
	Env = appkit.Env
	// Program is an instrumented application.
	Program = appkit.Program
	// Failure describes a manifested bug (assertion, crash, deadlock)
	// or a replay-machinery outcome.
	Failure = sched.Failure

	// Cell is one shared 64-bit word; Array a shared vector; Matrix a
	// shared row-major 2-D array.
	Cell   = mem.Cell
	Array  = mem.Array
	Matrix = mem.Matrix

	// The synchronization primitives, with pthread-like semantics.
	Mutex     = ssync.Mutex
	RWMutex   = ssync.RWMutex
	Cond      = ssync.Cond
	Semaphore = ssync.Semaphore
	Barrier   = ssync.Barrier
	WaitGroup = ssync.WaitGroup
	Once      = ssync.Once

	// World is the virtual syscall layer; FD an open file handle;
	// Queue a socket-like message queue.
	World = vsys.World
	FD    = vsys.FD
	Queue = vsys.Queue
)

// Shared-memory and synchronization constructors. Names give objects
// stable identities across runs (see the respective packages).
var (
	NewCell      = mem.NewCell
	NewArray     = mem.NewArray
	NewMatrix    = mem.NewMatrix
	NewMutex     = ssync.NewMutex
	NewRWMutex   = ssync.NewRWMutex
	NewCond      = ssync.NewCond
	NewSemaphore = ssync.NewSemaphore
	NewBarrier   = ssync.NewBarrier
	NewWaitGroup = ssync.NewWaitGroup
	NewOnce      = ssync.NewOnce
)

// Func brackets body with function-entry/exit instrumentation (recorded
// by the FUNC sketch); BB marks a basic-block boundary (recorded by the
// BB sketch).
var (
	Func = appkit.Func
	BB   = appkit.BB
)

// Scheme selects a sketching mechanism.
type Scheme = sketch.Scheme

// The sketching mechanisms, cheapest first: BASE records only inputs;
// SYNC the synchronization order; SYS the system-call order; FUNC the
// function entry/exit order; BB the basic-block order; RW the full
// shared-memory access order (prior work's approach, the overhead
// baseline).
const (
	BASE = sketch.BASE
	SYNC = sketch.SYNC
	SYS  = sketch.SYS
	FUNC = sketch.FUNC
	BB_  = sketch.BB // named BB_ to avoid clashing with the BB marker func
	RW   = sketch.RW
)

// DefaultEpochSteps is the epoch length used when EpochRingOptions
// leaves Steps zero.
const DefaultEpochSteps = core.DefaultEpochSteps

// Schemes lists every sketching mechanism, cheapest first.
func Schemes() []Scheme { return sketch.All() }

// ParseScheme converts a scheme name (case-insensitive) to a Scheme.
var ParseScheme = sketch.Parse

// Recording, replay and reproduction — PRES itself.
type (
	// Options parameterizes a production run.
	Options = core.Options
	// EpochRingOptions selects always-on recording (set Options.EpochRing):
	// the sketch is sealed into fixed-length epochs kept in a bounded
	// ring, with periodic world checkpoints replay can restart from (set
	// ReplayOptions.FromCheckpoint).
	EpochRingOptions = core.EpochRingOptions
	// Recording holds a production run's sketch, input log and outcome.
	Recording = core.Recording
	// ReplayOptions parameterizes the intelligent replayer.
	ReplayOptions = core.ReplayOptions
	// ReplayResult is the outcome of the replay search.
	ReplayResult = core.ReplayResult
	// Oracle matches a manifested failure against the bug under
	// diagnosis.
	Oracle = core.Oracle
	// SearchCache memoizes replay-attempt outcomes across searches and
	// workers (set ReplayOptions.Cache); see NewSearchCache.
	SearchCache = core.SearchCache
	// SearchPolicy composes the replay search's attempt kinds — which
	// canonical indices pop the directed frontier and which sample the
	// sketch-constrained space randomly (set ReplayOptions.Policy; nil
	// derives one from ReplayOptions.Feedback).
	SearchPolicy = search.Policy
	// FullOrder is a captured total schedule that reproduces a bug
	// deterministically.
	FullOrder = trace.FullOrder
	// RunResult summarizes one execution of the simulated machine.
	RunResult = sched.Result
	// RacePair is an observed race between two accesses; the replayer
	// reports the pairs it reversed as root causes.
	RacePair = race.Pair

	// ExploreOptions / ExploreResult parameterize and summarize
	// exhaustive schedule exploration (see Explore).
	ExploreOptions = sched.ExploreOptions
	ExploreResult  = sched.ExploreResult
)

var (
	// Record performs one production run under a sketching mechanism.
	Record = core.Record
	// Replay searches the unrecorded non-determinism until the bug
	// reproduces, returning the captured full order on success.
	Replay = core.Replay
	// Reproduce replays a captured full order verbatim.
	Reproduce = core.Reproduce
	// RecordContext, ReplayContext and ReproduceContext are the
	// context-aware forms: cancelling the context (or exceeding its
	// deadline) winds the execution down cooperatively at the next
	// scheduling point — a cancelled search drains its worker pool,
	// commits the attempts that already finished, and reports the
	// context's error in ReplayResult.Err.
	RecordContext    = core.RecordContext
	ReplayContext    = core.ReplayContext
	ReproduceContext = core.ReproduceContext
	// MatchBugID builds an oracle for a specific corpus bug id.
	MatchBugID = core.MatchBugID
	// NewSearchCache returns an empty cross-attempt schedule cache
	// (capacity <= 0 selects the default size).
	NewSearchCache = core.NewSearchCache
	// ReadRecording deserializes a recording written with
	// Recording.Write.
	ReadRecording = core.ReadRecording
	// Simplify minimizes the context switches of a captured schedule
	// while preserving the failure, for human consumption.
	Simplify = core.Simplify
	// Switches counts the context switches in a schedule.
	Switches = core.Switches
	// Advise turns a failed replay search's statistics into guidance:
	// which knob (sketch density, budget, oracle) is binding.
	Advise = core.Advise
)

// The built-in search policies (see SearchPolicy): FeedbackDirected is
// the paper's alternating directed/probabilistic composition,
// Probabilistic the E5 random-sampling ablation (attempt 0 stays the
// deterministic sticky baseline), StickyDirected pure deterministic
// sketch enforcement.
var (
	FeedbackDirectedPolicy SearchPolicy = search.FeedbackDirected{}
	ProbabilisticPolicy    SearchPolicy = search.Probabilistic{}
	StickyDirectedPolicy   SearchPolicy = search.StickyDirected{}
)

// Explore exhaustively enumerates every schedule of a small program — a
// stateless model checker over the same substrate PRES records on. It
// is the brute-force contrast that motivates PRES: exhaustive
// enumeration is a proof but explodes combinatorially, while
// sketch-guided probabilistic replay scales to real programs. Explore
// runs a bare root function; adapt a Program with a fresh World per run.
var Explore = sched.Explore

// ReplaySchedule re-executes a root function under a decision sequence
// returned by Explore (e.g. its FirstFailingSchedule).
var ReplaySchedule = sched.ReplaySchedule

// ExploreProgram exhaustively enumerates the schedules of a Program,
// building a fresh syscall world per execution from opts (only
// WorldSeed, Scale and FixBugs are meaningful here).
func ExploreProgram(prog *Program, opts Options, eopts ExploreOptions) *ExploreResult {
	return sched.Explore(func(t *Thread) {
		prog.Run(&Env{
			T:       t,
			W:       vsys.NewWorld(opts.WorldSeed),
			Scale:   opts.Scale,
			Procs:   opts.Processors,
			FixBugs: opts.FixBugs,
		})
	}, eopts)
}

// Observability: the metric/trace contract is documented in
// OBSERVABILITY.md. Set Options.Metrics / ReplayOptions.Metrics to a
// registry (and ReplayOptions.Trace to a sink) to instrument recording
// and replay; leave them nil — the default — for a measurement-free
// hot path.
type (
	// MetricsRegistry collects counters, gauges and histograms from
	// recording, replay and the scheduling substrate. A nil registry
	// disables collection at zero cost.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time, JSON-marshalable copy of a
	// registry.
	MetricsSnapshot = obs.Snapshot
	// TraceSink writes structured JSONL replay-search events.
	TraceSink = obs.TraceSink
	// AttemptEvent is one replay attempt's structured trace record.
	AttemptEvent = obs.AttemptEvent
	// RecordEvent is one production run's structured trace record.
	RecordEvent = obs.RecordEvent
	// SearchSummaryEvent closes one replay search's trace.
	SearchSummaryEvent = obs.SummaryEvent
)

// Trace event type tags (the "event" field of every JSONL trace line).
const (
	EventAttempt = obs.EventAttempt
	EventRecord  = obs.EventRecord
	EventSummary = obs.EventSummary
)

var (
	// NewMetricsRegistry returns an empty, enabled metrics registry.
	NewMetricsRegistry = obs.NewRegistry
	// NewTraceSink returns a JSONL trace sink writing to an io.Writer.
	NewTraceSink = obs.NewTraceSink
	// WriteMetrics serializes a registry snapshot as "json" (default)
	// or "prom" (Prometheus text exposition format).
	WriteMetrics = obs.WriteSnapshot
)

// The evaluation corpus: the paper's 11 applications and 13 bugs.
type BugInfo = apps.BugInfo

var (
	// Programs returns the 11 corpus applications.
	Programs = apps.All
	// GetProgram returns a corpus application by name.
	GetProgram = apps.Get
	// Bugs returns the 13 corpus bugs.
	Bugs = apps.AllBugs
	// GetBug returns a corpus bug by id.
	GetBug = apps.GetBug
	// ProgramForBug returns the application manifesting a bug.
	ProgramForBug = apps.ProgramForBug
)

// BugPattern is one canonical concurrency-bug pattern from the catalog:
// a tiny parameterized program with exhaustively proven ground truth.
type BugPattern = patterns.Pattern

// Patterns returns the canonical bug-pattern catalog (atomicity
// violations, order violations, deadlocks, lost wakeups) — a regression
// battery independent of the application corpus, and worked examples of
// every bug class the replayer handles.
var Patterns = patterns.All
