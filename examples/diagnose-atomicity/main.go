// Diagnose-atomicity walks through diagnosing a production failure of
// the MySQL-style storage engine from the evaluation corpus: the
// mysql-169 binlog atomicity violation. It shows what a PRES deployment
// looks like — cheap always-on recording, a crash, then offline
// reproduction — including the information a developer gets out of it.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	prog, ok := repro.ProgramForBug("mysql-169")
	if !ok {
		log.Fatal("corpus missing mysql-169")
	}
	bug, _ := repro.GetBug("mysql-169")
	fmt.Printf("target: %s — %s\n\n", bug.ID, bug.Description)

	// Production: the server runs with SYNC sketching always on. Most
	// runs are fine; eventually a rare interleaving corrupts the binlog.
	oracle := repro.MatchBugID("mysql-169")
	var rec *repro.Recording
	runs := 0
	for seed := int64(0); seed < 2000; seed++ {
		r := repro.Record(prog, repro.Options{
			Scheme:       repro.SYNC,
			Processors:   4,
			ScheduleSeed: seed,
			WorldSeed:    1,
		})
		runs++
		if f := r.BugFailure(); f != nil && oracle(f) {
			rec = r
			break
		}
	}
	if rec == nil {
		log.Fatal("mysql-169 did not manifest")
	}
	fmt.Printf("after %d production runs the server crashed:\n  %v\n",
		runs, rec.BugFailure())
	fmt.Printf("what PRES kept: a %d-entry synchronization sketch plus %d inputs (%d bytes total)\n\n",
		rec.Sketch.Len(), rec.Inputs.Len(), rec.LogBytes())

	// Diagnosis, attempt by attempt.
	res := repro.Replay(prog, rec, repro.ReplayOptions{
		Feedback: true,
		Oracle:   oracle,
	})
	if !res.Reproduced {
		log.Fatalf("not reproduced within %d attempts (%+v)", res.Attempts, res.Stats)
	}
	fmt.Printf("the replayer reproduced the crash in %d attempt(s):\n", res.Attempts)
	fmt.Printf("  race flips needed: %d\n", res.Flips)
	fmt.Printf("  races observed while searching: %d\n", res.Stats.RacesSeen)
	for _, rc := range res.RootCauses {
		fmt.Printf("  root cause: %v\n", rc)
	}
	fmt.Printf("  reproduced failure: %v\n\n", res.Failure)

	// The developer can now re-run the exact failing schedule under
	// whatever inspection they like, as many times as they like.
	for i := 0; i < 3; i++ {
		out := repro.Reproduce(prog, rec, res.Order)
		fmt.Printf("deterministic re-run %d: %v\n", i+1, out.Failure)
	}

	// And the fix is verifiable in-harness: the patched binlog path
	// cannot fail under any schedule.
	fmt.Println("\nverifying the patch (log lock around the append) on 200 adversarial schedules...")
	for seed := int64(0); seed < 200; seed++ {
		r := repro.Record(prog, repro.Options{
			Scheme:       repro.BASE,
			Processors:   8,
			Preempt:      0.1,
			ScheduleSeed: seed,
			FixBugs:      true,
		})
		if r.Result.Failure != nil {
			log.Fatalf("patched variant failed: %v", r.Result.Failure)
		}
	}
	fmt.Println("patched variant survived all 200 runs")
}
