// Scheme-sweep demonstrates the paper's central trade-off on one bug:
// cheaper sketches record less, so the production run is faster, but
// the replayer must search harder. It records the aget resume-state
// atomicity violation under every mechanism and reports recording
// overhead, log size and replay attempts side by side.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro"
)

const bugID = "aget-atomicity"

func main() {
	prog, _ := repro.ProgramForBug(bugID)
	oracle := repro.MatchBugID(bugID)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "scheme\tproduction overhead\tsketch entries\tlog bytes\treplay attempts")

	for _, scheme := range repro.Schemes() {
		// Find a production run where the bug manifests under this
		// scheme (the schedule space is identical across schemes; the
		// recording just captures different subsequences of it).
		var rec *repro.Recording
		for seed := int64(0); seed < 2000; seed++ {
			r := repro.Record(prog, repro.Options{
				Scheme:       scheme,
				Processors:   4,
				ScheduleSeed: seed,
				WorldSeed:    1,
			})
			if f := r.BugFailure(); f != nil && oracle(f) {
				rec = r
				break
			}
		}
		if rec == nil {
			log.Fatalf("%v: bug never manifested", scheme)
		}

		res := repro.Replay(prog, rec, repro.ReplayOptions{
			Feedback: true,
			Oracle:   oracle,
		})
		attempts := fmt.Sprintf("%d", res.Attempts)
		if !res.Reproduced {
			attempts = ">" + attempts
		}

		// Overhead is a production metric: measure it on a long,
		// steady-state workload (the patched variant, so a lucky
		// manifestation does not cut the run short).
		prodRun := repro.Record(prog, repro.Options{
			Scheme:       scheme,
			Processors:   4,
			ScheduleSeed: 1,
			WorldSeed:    1,
			Scale:        500,
			FixBugs:      true,
		})
		fmt.Fprintf(w, "%v\t%.2f%%\t%d\t%d\t%s\n",
			scheme, prodRun.Result.Overhead()*100, rec.Sketch.Len(), rec.LogBytes(), attempts)
	}
	w.Flush()

	fmt.Println("\nreading the table: RW reproduces first try but is ruinously expensive to")
	fmt.Println("record; BASE records nothing but may search forever; SYNC/SYS are the")
	fmt.Println("paper's sweet spot — near-zero production overhead, a handful of attempts.")
}
