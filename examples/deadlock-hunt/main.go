// Deadlock-hunt reproduces the OpenLDAP-style lock-order-inversion
// deadlock from the corpus. Deadlocks are the best case for SYNC
// sketching: the recorded synchronization order pins the inversion
// exactly, so the very first coordinated replay hangs the same way —
// and the scheduler's deadlock detector names every stuck thread and
// the lock it wants.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	prog, _ := repro.ProgramForBug("openldap-deadlock")
	oracle := repro.MatchBugID("openldap-deadlock")

	var rec *repro.Recording
	for seed := int64(0); seed < 2000; seed++ {
		r := repro.Record(prog, repro.Options{
			Scheme:       repro.SYNC,
			Processors:   4,
			ScheduleSeed: seed,
			WorldSeed:    1,
		})
		if f := r.BugFailure(); f != nil && oracle(f) {
			rec = r
			break
		}
	}
	if rec == nil {
		log.Fatal("the inversion never deadlocked")
	}

	f := rec.BugFailure()
	fmt.Println("production hang detected:")
	for _, s := range f.Stuck {
		fmt.Printf("  thread %d (%s): %s\n", s.TID, s.Name, s.What)
	}

	res := repro.Replay(prog, rec, repro.ReplayOptions{Feedback: true, Oracle: oracle})
	if !res.Reproduced {
		log.Fatalf("not reproduced (%d attempts)", res.Attempts)
	}
	fmt.Printf("\nreproduced on replay attempt %d (deadlocks replay from the sync order alone)\n", res.Attempts)

	out := repro.Reproduce(prog, rec, res.Order)
	fmt.Println("\ndeterministic re-run reports the same cycle:")
	for _, s := range out.Failure.Stuck {
		fmt.Printf("  thread %d (%s): %s\n", s.TID, s.Name, s.What)
	}
}
