// Quickstart records a tiny racy program with SYNC sketching, lets the
// PRES replayer reproduce the failure, and then replays the captured
// schedule deterministically — the full pipeline in ~80 lines.
package main

import (
	"fmt"
	"log"

	"repro"
)

// program is a classic order violation: the producer publishes the
// ready flag before the value it guards.
func program() *repro.Program {
	return &repro.Program{
		Name: "quickstart",
		Run: func(env *repro.Env) {
			th := env.T
			data := repro.NewCell("data", 0)
			ready := repro.NewCell("ready", 0)

			producer := th.Spawn("producer", func(t *repro.Thread) {
				ready.Store(t, 1) // BUG: flag published before data
				t.Yield()
				data.Store(t, 42)
			})
			consumer := th.Spawn("consumer", func(t *repro.Thread) {
				if ready.Load(t) == 1 {
					v := data.Load(t)
					t.Check(v == 42, "use-before-init", "read %d before init", v)
				}
			})
			th.Join(producer)
			th.Join(consumer)
		},
	}
}

func main() {
	prog := program()

	// 1. Production: run with cheap SYNC sketching until the bug bites.
	var rec *repro.Recording
	var seed int64
	for seed = 0; seed < 1000; seed++ {
		r := repro.Record(prog, repro.Options{
			Scheme:       repro.SYNC,
			Processors:   4,
			ScheduleSeed: seed,
		})
		if r.BugFailure() != nil {
			rec = r
			break
		}
	}
	if rec == nil {
		log.Fatal("the race never lost in 1000 production runs — lucky scheduling")
	}
	fmt.Printf("production run (seed %d) failed: %v\n", seed, rec.BugFailure())
	fmt.Printf("recorded sketch: %d entries, %d log bytes\n",
		rec.Sketch.Len(), rec.LogBytes())

	// 2. Diagnosis: the intelligent replayer searches the unrecorded
	// interleavings, guided by the sketch and by feedback from failed
	// attempts.
	res := repro.Replay(prog, rec, repro.ReplayOptions{
		Feedback: true,
		Oracle:   repro.MatchBugID("use-before-init"),
	})
	if !res.Reproduced {
		log.Fatalf("not reproduced within %d attempts", res.Attempts)
	}
	fmt.Printf("reproduced in %d coordinated replay attempt(s) with %d race flip(s)\n",
		res.Attempts, res.Flips)

	// 3. Forever after: the captured full order replays the bug every
	// single time.
	for i := 0; i < 5; i++ {
		out := repro.Reproduce(prog, rec, res.Order)
		if out.Failure == nil {
			log.Fatal("deterministic replay lost the bug!?")
		}
	}
	fmt.Println("captured schedule re-reproduced the failure 5/5 times")
}
