// Why-pres contrasts the two ways of pinning down a concurrency bug on
// this substrate:
//
//  1. exhaustive schedule enumeration (a stateless model checker) —
//     a proof, but combinatorially explosive; and
//  2. PRES — record a cheap sketch in production, then let the
//     probabilistic feedback-directed replayer reproduce the failure in
//     a handful of attempts.
//
// On a tiny program both work. Scaling the very same program slightly
// makes enumeration intractable while PRES's attempt count stays flat —
// the paper's core motivation, measured live.
package main

import (
	"fmt"
	"log"

	"repro"
)

// bank builds the classic lost-update program: n workers each do k
// unsynchronized read-modify-write increments; the final assertion
// fails iff an update was lost.
func bank(n, k int) *repro.Program {
	return &repro.Program{
		Name: "bank",
		Run: func(env *repro.Env) {
			th := env.T
			bal := repro.NewCell("balance", 0)
			var ws []*repro.Thread
			for i := 0; i < n; i++ {
				ws = append(ws, th.Spawn("teller", func(t *repro.Thread) {
					for j := 0; j < k; j++ {
						v := bal.Load(t)
						bal.Store(t, v+1)
					}
				}))
			}
			for _, w := range ws {
				th.Join(w)
			}
			th.Check(bal.Peek() == uint64(n*k), "lost-update", "balance %d != %d", bal.Peek(), n*k)
		},
	}
}

func main() {
	fmt.Println("exhaustive enumeration vs. PRES, on the same lost-update bug")
	fmt.Println()
	fmt.Printf("%-12s %-22s %-18s\n", "workload", "enumeration (runs)", "PRES (attempts)")

	for _, cfg := range []struct{ n, k int }{{2, 1}, {2, 2}, {2, 3}, {3, 2}} {
		prog := bank(cfg.n, cfg.k)

		// Brute force: enumerate every schedule (budget-capped).
		exp := repro.Explore(func(t *repro.Thread) {
			prog.Run(&repro.Env{T: t})
		}, repro.ExploreOptions{MaxRuns: 200_000})
		enum := fmt.Sprintf("%d", exp.Runs)
		if !exp.Complete {
			enum = ">" + enum + " (gave up)"
		}

		// PRES: find a failing production run under SYNC sketching, then
		// reproduce it.
		attempts := "-"
		for seed := int64(0); seed < 3000; seed++ {
			rec := repro.Record(prog, repro.Options{
				Scheme:       repro.SYNC,
				Processors:   4,
				ScheduleSeed: seed,
			})
			if rec.BugFailure() == nil {
				continue
			}
			res := repro.Replay(prog, rec, repro.ReplayOptions{
				Feedback: true,
				Oracle:   repro.MatchBugID("lost-update"),
			})
			if !res.Reproduced {
				log.Fatalf("n=%d k=%d: replay failed", cfg.n, cfg.k)
			}
			attempts = fmt.Sprintf("%d", res.Attempts)
			break
		}

		fmt.Printf("%-12s %-22s %-18s\n",
			fmt.Sprintf("%dx%d", cfg.n, cfg.k), enum, attempts)
	}

	fmt.Println()
	fmt.Println("enumeration is a proof but its cost explodes with the program;")
	fmt.Println("PRES's attempts stay flat because the sketch plus feedback aim the")
	fmt.Println("search at exactly the interleaving that failed in production.")
}
