package repro_test

import (
	"fmt"

	"repro"
)

// Example demonstrates the full PRES pipeline on a minimal order
// violation: record a failing production run with cheap SYNC sketching,
// reproduce it with the intelligent replayer, then replay the captured
// schedule deterministically.
func Example() {
	prog := &repro.Program{
		Name: "example",
		Run: func(env *repro.Env) {
			th := env.T
			data := repro.NewCell("data", 0)
			ready := repro.NewCell("ready", 0)
			p := th.Spawn("producer", func(t *repro.Thread) {
				ready.Store(t, 1) // bug: published before data
				t.Yield()
				data.Store(t, 42)
			})
			c := th.Spawn("consumer", func(t *repro.Thread) {
				if ready.Load(t) == 1 {
					t.Check(data.Load(t) == 42, "use-before-init", "uninitialized read")
				}
			})
			th.Join(p)
			th.Join(c)
		},
	}

	// Production runs with always-on SYNC sketching, until one fails.
	var rec *repro.Recording
	for seed := int64(0); seed < 5000; seed++ {
		r := repro.Record(prog, repro.Options{Scheme: repro.SYNC, ScheduleSeed: seed})
		if r.BugFailure() != nil {
			rec = r
			break
		}
	}

	// Diagnosis: coordinated replay with feedback.
	res := repro.Replay(prog, rec, repro.ReplayOptions{
		Feedback: true,
		Oracle:   repro.MatchBugID("use-before-init"),
	})
	fmt.Println("reproduced:", res.Reproduced)

	// The captured schedule reproduces the failure every time.
	deterministic := true
	for i := 0; i < 3; i++ {
		if out := repro.Reproduce(prog, rec, res.Order); out.Failure == nil {
			deterministic = false
		}
	}
	fmt.Println("deterministic:", deterministic)
	// Output:
	// reproduced: true
	// deterministic: true
}

// ExampleExplore exhaustively enumerates a tiny program's schedules —
// the brute-force alternative PRES makes unnecessary.
func ExampleExplore() {
	res := repro.Explore(func(th *repro.Thread) {
		x := repro.NewCell("x", 0)
		c := th.Spawn("writer", func(t *repro.Thread) {
			x.Store(t, 1)
		})
		v := x.Load(th)
		th.Join(c)
		_ = v
	}, repro.ExploreOptions{})
	fmt.Println("complete:", res.Complete)
	fmt.Println("failures:", res.FailureCount)
	// Output:
	// complete: true
	// failures: 0
}
