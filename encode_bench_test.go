// Benchmarks for the allocation-lean recording pipeline (PR: sketch
// wire format v2): encoder throughput and density per scheme in both
// wire versions, the streaming Recording.Write path, and the harness
// cell-pool's matrix wall-clock at -j 1 vs -j GOMAXPROCS. cmd/presperf
// distills the same measurements into BENCH_pr5.json.
package repro_test

import (
	"bytes"
	"io"
	"runtime"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/sketch"
	"repro/internal/trace"
)

// discardCounter counts encoded bytes without retaining them, like the
// recording pipeline's own size pre-pass.
type discardCounter struct{ n int }

func (w *discardCounter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}

// benchRecording records mysqld's production workload once per scheme
// — the corpus's densest sketches — and is shared across benchmarks.
var benchRecordings = map[sketch.Scheme]*core.Recording{}

func benchRecording(b *testing.B, s sketch.Scheme) *core.Recording {
	b.Helper()
	if rec, ok := benchRecordings[s]; ok {
		return rec
	}
	prog, ok := apps.Get("mysqld")
	if !ok {
		b.Fatal("mysqld not in corpus")
	}
	rec := core.Record(prog, core.Options{
		Scheme:       s,
		Processors:   4,
		ScheduleSeed: 1,
		WorldSeed:    1,
		Scale:        400,
		MaxSteps:     5_000_000,
		FixBugs:      true,
	})
	if rec.Sketch.Len() == 0 && s != sketch.BASE {
		b.Fatalf("%v sketch empty", s)
	}
	benchRecordings[s] = rec
	return rec
}

// BenchmarkEncodeSketch measures both wire versions of the sketch
// codec on real recorded logs: ns/entry is encoder speed, bytes/entry
// the density the log-size experiment (E3) reports. The acceptance
// bar for this PR: SYNC bytes/entry drops >=30% from v1 to v2.
func BenchmarkEncodeSketch(b *testing.B) {
	for _, s := range []sketch.Scheme{sketch.SYNC, sketch.SYS, sketch.FUNC, sketch.BB, sketch.RW} {
		l := benchRecording(b, s).Sketch
		for name, enc := range map[string]func(io.Writer, *trace.SketchLog) error{
			"v1": trace.EncodeSketchV1, "v2": trace.EncodeSketch,
		} {
			b.Run(s.String()+"/"+name, func(b *testing.B) {
				b.ReportAllocs()
				var size int
				for i := 0; i < b.N; i++ {
					var cw discardCounter
					if err := enc(&cw, l); err != nil {
						b.Fatal(err)
					}
					size = cw.n
				}
				entries := float64(l.Len())
				b.ReportMetric(float64(size)/entries, "bytes/entry")
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*entries), "ns/entry")
			})
		}
	}
}

// BenchmarkEncodeInput measures the input-log codec both ways on the
// same production run.
func BenchmarkEncodeInput(b *testing.B) {
	l := benchRecording(b, sketch.SYNC).Inputs
	for name, enc := range map[string]func(io.Writer, *trace.InputLog) error{
		"v1": trace.EncodeInputV1, "v2": trace.EncodeInput,
	} {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var size int
			for i := 0; i < b.N; i++ {
				var cw discardCounter
				if err := enc(&cw, l); err != nil {
					b.Fatal(err)
				}
				size = cw.n
			}
			b.ReportMetric(float64(size)/float64(max(l.Len(), 1)), "bytes/record")
		})
	}
}

// BenchmarkRecordingWrite measures the full serialization path —
// counting pre-pass plus streaming encode — which no longer buffers
// the encoded sections in memory.
func BenchmarkRecordingWrite(b *testing.B) {
	rec := benchRecording(b, sketch.SYNC)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := rec.Write(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeSketch measures both decoder paths on the same log.
func BenchmarkDecodeSketch(b *testing.B) {
	l := benchRecording(b, sketch.SYNC).Sketch
	for name, enc := range map[string]func(io.Writer, *trace.SketchLog) error{
		"v1": trace.EncodeSketchV1, "v2": trace.EncodeSketch,
	} {
		var buf bytes.Buffer
		if err := enc(&buf, l); err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := trace.DecodeSketch(bytes.NewReader(buf.Bytes())); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHarnessMatrix times the E2 overhead matrix through the
// experiment cell pool at -j 1 (sequential baseline) and
// -j GOMAXPROCS. The tables are byte-identical (TestJobsDeterminism);
// only the wall-clock should move.
func BenchmarkHarnessMatrix(b *testing.B) {
	cfg := harness.Config{SeedBudget: 2000, MaxAttempts: 1000, OverheadScale: 150}
	for _, tc := range []struct {
		name string
		jobs int
	}{{"j1", 1}, {"jmax", runtime.GOMAXPROCS(0)}} {
		b.Run(tc.name, func(b *testing.B) {
			c := cfg
			c.Jobs = tc.jobs
			for i := 0; i < b.N; i++ {
				rows := harness.RunE2(nil, c)
				if len(rows) == 0 {
					b.Fatal("no rows")
				}
			}
		})
	}
}
